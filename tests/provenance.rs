//! Results provenance: the committed tables under `results/` must match
//! `results/MANIFEST.json`, and the manifest machinery itself must
//! round-trip. These are the same checks CI's results-drift job runs via
//! `regen --check`; having them in the test suite means `cargo test`
//! catches a stale table before a PR is even opened.

use std::path::{Path, PathBuf};

use mtm_experiments::manifest::{self, Manifest};
use mtm_experiments::opts::{ExpOpts, Scale};
use mtm_experiments::registry::REGISTRY;

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("results")
}

/// Every registered experiment has a committed table, and every committed
/// table has a registry entry — drift in either direction is how stale
/// results creep in unnoticed.
#[test]
fn registry_and_results_cover_each_other() {
    let dir = results_dir();
    for exp in REGISTRY.iter() {
        for ext in ["txt", "csv"] {
            let path = dir.join(format!("{}.{ext}", exp.id));
            assert!(path.is_file(), "{} is registered but {} is missing", exp.id, path.display());
        }
    }
    for entry in std::fs::read_dir(&dir).expect("results/ exists") {
        let name = entry.expect("dir entry").file_name().into_string().expect("utf-8 name");
        let Some(stem) = name.strip_suffix(".txt").or_else(|| name.strip_suffix(".csv")) else {
            continue;
        };
        assert!(
            mtm_experiments::registry::find(stem).is_some(),
            "results/{name} has no registry entry — register it or delete the file"
        );
    }
}

/// Each committed `.txt` header carries the registry title, so the files
/// are regenerable bit-for-bit by `regen`.
#[test]
fn committed_headers_match_registry_titles() {
    let dir = results_dir();
    for exp in REGISTRY.iter() {
        let txt =
            std::fs::read_to_string(dir.join(format!("{}.txt", exp.id))).expect("committed txt");
        let header = txt.lines().next().unwrap_or_default();
        assert_eq!(
            header,
            format!("== {}: {} ==", exp.display_id(), exp.title),
            "{}: header drifted from the registry title",
            exp.id
        );
    }
}

/// The committed manifest verifies against the committed files: every
/// digest matches and no orphan tables exist. This is `regen --check`.
#[test]
fn committed_manifest_digests_are_clean() {
    let dir = results_dir();
    let m = Manifest::load(&dir).expect("results/MANIFEST.json parses");
    assert_eq!(m.tables.len(), REGISTRY.len(), "manifest covers every experiment");
    let problems = manifest::check_digests(&m, &dir);
    assert!(problems.is_empty(), "committed results drifted:\n  {}", problems.join("\n  "));
}

/// End-to-end quick-scale regeneration into a scratch directory: regen
/// writes files + manifest, `--check` passes, tampering makes it fail
/// naming the offending table, and a second targeted regeneration merges
/// into (not truncates) the manifest.
#[test]
fn quick_regen_roundtrip_detects_tampering() {
    let dir = std::env::temp_dir().join("mtm-provenance-itest");
    let _ = std::fs::remove_dir_all(&dir);
    let quick = ExpOpts { scale: Scale::Quick, ..ExpOpts::default() };

    let ids = vec!["t5".to_string(), "f5".to_string()];
    let m = manifest::regenerate(&ids, &dir, &quick).expect("quick regeneration succeeds");
    assert_eq!(m.tables.len(), 2);
    assert_eq!(m.entry("t5").expect("t5 recorded").scale, "quick");
    assert!(manifest::check_digests(&m, &dir).is_empty(), "fresh regen must verify");
    assert!(manifest::check_quick(&m, 0).is_empty(), "quick digests must be reproducible");

    // Tamper with one emitted file: digest check fails and names the table.
    let victim = dir.join("t5.csv");
    let mut bytes = std::fs::read(&victim).expect("emitted csv");
    bytes.push(b'x');
    std::fs::write(&victim, bytes).expect("tamper");
    let problems = manifest::check_digests(&m, &dir);
    assert_eq!(problems.len(), 1, "{problems:?}");
    assert!(problems[0].starts_with("t5:"), "problem names the table: {}", problems[0]);

    // Targeted re-regeneration repairs t5 and keeps f5's entry.
    let m2 = manifest::regenerate(&[ids[0].clone()], &dir, &quick).expect("repair regen");
    assert_eq!(m2.tables.len(), 2, "merge, not truncate");
    assert!(manifest::check_digests(&m2, &dir).is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}
