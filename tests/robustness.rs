//! Robustness tests: the stuck-run detector must prove the A1 tag-collision
//! deadlock quickly and deterministically, and fault injection must not
//! break the determinism contract.

use mobile_telephone::engine::audit::determinism_self_check;
use mobile_telephone::graph::rng::derive_seed;
use mobile_telephone::prelude::*;

/// The A1 experiment's trial construction at β = 1, n = 32: an 8-regular
/// expander running synchronized bit convergence with 5-bit tags.
fn a1_engine(trial_seed: u64) -> (Engine<BitConvergence, StaticTopology>, TagConfig) {
    let g = GraphFamily::Expander8.build(32, derive_seed(trial_seed, 0));
    let n = g.node_count();
    let config = TagConfig::new(n, 1.0, g.max_degree());
    let uids = UidPool::random(n, derive_seed(trial_seed, 10));
    let nodes = BitConvergence::spawn(&uids, config, derive_seed(trial_seed, 12));
    let e = Engine::new(
        StaticTopology::new(g),
        ModelParams::mobile(1),
        ActivationSchedule::synchronized(n),
        nodes,
        derive_seed(trial_seed, 11),
    );
    (e, config)
}

/// First trial seed (in A1's own `derive_seed(0xC0FFEE, t)` sequence) whose
/// *globally minimal* tag is held by two nodes with different UIDs — the
/// deadlock precondition: identical advertised bits mean the tie is never
/// broken and two leaders coexist forever.
fn deadlocking_trial_seed() -> u64 {
    for t in 0..1000 {
        let seed = derive_seed(0xC0FFEE, t);
        let (e, _) = a1_engine(seed);
        let pairs: Vec<IdPair> = e.nodes().iter().map(|p| p.active_pair()).collect();
        let min_tag = pairs.iter().map(|p| p.tag).min().expect("nonempty");
        let holders: Vec<u64> = pairs.iter().filter(|p| p.tag == min_tag).map(|p| p.uid).collect();
        if holders.len() >= 2 && holders.windows(2).any(|w| w[0] != w[1]) {
            return seed;
        }
    }
    panic!("no deadlocking trial seed in the first 1000 A1 trials");
}

#[test]
fn a1_beta1_deadlock_is_detected_as_stuck() {
    let seed = deadlocking_trial_seed();
    let run = || {
        let (mut e, config) = a1_engine(seed);
        let window = 4 * config.phase_len().max(1);
        e.enable_stuck_detection(window);
        let out = e.run_to_stabilization(100 * window);
        (out.status, window)
    };
    let (status, window) = run();
    let RunStatus::Stuck(report) = status else {
        panic!("deadlocked A1 trial must be detected as stuck, got {status:?}");
    };
    assert_eq!(report.window, window);
    assert!(
        report.detected_round <= 10 * window,
        "deadlock should be proven within 10 windows ({} rounds), took {}",
        10 * window,
        report.detected_round
    );
    assert_eq!(
        report.idle_connections, 0,
        "the tag-collision deadlock is a zero-connection fixed point"
    );
    // Detection is part of the deterministic execution: same seed, same
    // report, bit for bit.
    let (status2, _) = run();
    assert_eq!(status2, RunStatus::Stuck(report));
}

#[test]
fn timeout_without_detection_stays_timed_out() {
    // The same deadlocked run without the detector burns its whole budget —
    // the behaviour the detector exists to replace.
    let (mut e, _) = a1_engine(deadlocking_trial_seed());
    let out = e.run_to_stabilization(5_000);
    assert_eq!(out.status, RunStatus::TimedOut);
    assert_eq!(out.stabilized_round, None);
}

/// Engine under the full fault stack: crash churn, link flutter, and
/// proposal loss, all switched on at once.
fn faulty_engine(seed: u64) -> Engine<NonSyncBitConvergence, FaultyTopology<StaticTopology>> {
    let g = GraphFamily::Expander8.build(24, derive_seed(seed, 0));
    let n = g.node_count();
    let config = TagConfig::for_network(n, g.max_degree());
    let uids = UidPool::random(n, derive_seed(seed, 10));
    let nodes = NonSyncBitConvergence::spawn(&uids, config, derive_seed(seed, 12));
    let cfg = FaultConfig { crash: 0.05, recover: 0.2, link_loss: 0.1 };
    let topo = FaultyTopology::new(StaticTopology::new(g), cfg, derive_seed(seed, 13));
    let mut e = Engine::new(
        topo,
        ModelParams::mobile(config.nonsync_tag_bits()),
        ActivationSchedule::synchronized(n),
        nodes,
        derive_seed(seed, 11),
    );
    e.set_proposal_loss(0.2);
    e
}

#[test]
fn fault_injection_preserves_determinism() {
    // Same (seed, config) twice with crash faults and message loss enabled:
    // identical metrics, identical per-round traces, identical final state.
    let m = determinism_self_check(|| faulty_engine(0xFA017), 2_000)
        .expect("faulted runs must replay identically");
    assert!(m.dropped_proposals > 0, "loss at p = 0.2 should have dropped something");
    assert!(m.connections > 0, "faults at these rates must not kill all progress");
}

#[test]
fn different_fault_seeds_diverge() {
    // Sanity check that the determinism test has teeth: a different seed
    // must actually change the execution.
    let run = |seed| {
        let mut e = faulty_engine(seed);
        e.run_rounds(500);
        (e.metrics(), e.network_fingerprint())
    };
    assert_ne!(run(0xFA017), run(0xFA018));
}

/// PUSH-PULL on a 24-node expander under the given fault mix.
fn rumor_engine(
    seed: u64,
    crash: f64,
    loss: f64,
) -> Engine<PushPull, FaultyTopology<StaticTopology>> {
    let g = GraphFamily::Expander8.build(24, derive_seed(seed, 0));
    let n = g.node_count();
    let cfg = if crash > 0.0 { FaultConfig::crashes(crash, 0.2) } else { FaultConfig::NONE };
    let topo = FaultyTopology::new(StaticTopology::new(g), cfg, derive_seed(seed, 13));
    let mut e = Engine::new(
        topo,
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        PushPull::spawn(n, 1),
        derive_seed(seed, 11),
    );
    if loss > 0.0 {
        e.set_proposal_loss(loss);
    }
    e
}

#[test]
fn push_pull_completes_under_proposal_loss() {
    // Dropping 30% of proposals slows the rumor but must not strand it:
    // the coin-flip retry structure has no state to corrupt.
    let lossless = rumor_engine(0x5EED, 0.0, 0.0)
        .run_to_full_information(1_000_000)
        .stabilized_round
        .expect("fault-free PUSH-PULL informs the expander");
    let lossy = rumor_engine(0x5EED, 0.0, 0.3)
        .run_to_full_information(1_000_000)
        .stabilized_round
        .expect("PUSH-PULL must still complete at 30% proposal loss");
    assert!(
        lossy >= lossless,
        "loss cannot speed up a monotone rumor on the same engine stream \
         (lossless {lossless}, lossy {lossy})"
    );
}

#[test]
fn push_pull_completes_under_crash_churn() {
    // Crashed nodes cannot be informed while down, so completion rides on
    // recovery; with recover ≫ crash the rumor must still land everywhere.
    let out = rumor_engine(0x5EED, 0.02, 0.0).run_to_full_information(1_000_000);
    assert!(out.stabilized_round.is_some(), "PUSH-PULL must survive 2% crash churn");
}

#[test]
fn push_pull_fault_runs_replay_identically() {
    let m = determinism_self_check(|| rumor_engine(0xB0B, 0.02, 0.3), 2_000)
        .expect("faulted PUSH-PULL runs must replay identically");
    assert!(m.dropped_proposals > 0, "loss at p = 0.3 should drop something in 2000 rounds");
}

#[test]
fn ppush_completes_under_loss_and_crashes() {
    // PPUSH carries protocol state in the advertised bit; faults must not
    // wedge the informed/uninformed frontier.
    let g = GraphFamily::Expander8.build(24, derive_seed(7, 0));
    let n = g.node_count();
    let topo = FaultyTopology::new(
        StaticTopology::new(g),
        FaultConfig::crashes(0.02, 0.2),
        derive_seed(7, 13),
    );
    let mut e = Engine::new(
        topo,
        ModelParams::mobile(1),
        ActivationSchedule::synchronized(n),
        Ppush::spawn(n, 1),
        derive_seed(7, 11),
    );
    e.set_proposal_loss(0.3);
    let out = e.run_to_full_information(1_000_000);
    assert!(out.stabilized_round.is_some(), "PPUSH must survive crash churn + 30% loss");
}
