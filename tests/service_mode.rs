//! Integration tests for service mode: the multi-epoch maintenance loop
//! (`Engine::run_service` driving `MaintainedGossip`).
//!
//! Covers the PR-6 acceptance gates:
//! * same-seed determinism of the full multi-epoch trace,
//! * a pinned golden epoch history for one fixed scenario,
//! * re-election completing after a scheduled leader crash on the
//!   expander8-1024 workhorse topology,
//! * no false-positive re-elections on a healthy long run with a
//!   calibrated timeout,
//! * phased `run_service` calls composing into one execution,
//! * wedge diagnosis (not a timeout) on a partitioned network.
//!
//! Timeout choices follow the calibration in DESIGN.md: steady-state
//! heartbeat staleness is governed by single-source rumor spread (measured
//! max-age tails ≈ 27 on clique-8, ≈ 51 on expander8-256, ≈ 60 on
//! expander8-1024), and every timeout here carries a 3–5× margin.

use mobile_telephone::graph::rng::derive_seed;
use mobile_telephone::prelude::*;

/// Node indices sorted by UID: `by_uid[0]` holds the minimum UID,
/// `by_uid[1]` the expected successor after the leader dies.
fn nodes_by_uid(uids: &UidPool) -> Vec<usize> {
    let mut by_uid: Vec<usize> = (0..uids.len()).collect();
    by_uid.sort_unstable_by_key(|&u| uids.uid(u));
    by_uid
}

/// Maintained-gossip engine over an arbitrary topology on the standard
/// seed streams (10 = UID pool is derived by the caller, 11 = engine).
fn service_engine<T: DynamicTopology>(
    topo: T,
    uids: &UidPool,
    timeout: u64,
    seed: u64,
) -> Engine<MaintainedGossip, T> {
    let n = uids.len();
    Engine::new(
        topo,
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        MaintainedGossip::spawn(uids, MaintenanceConfig::new(timeout)),
        derive_seed(seed, 11),
    )
}

/// One full churn scenario used by the determinism test: expander8-256
/// under memoryless crash/recover faults, leader additionally scheduled to
/// die permanently mid-run.
fn churn_outcome(seed: u64) -> (UidPool, ServiceOutcome) {
    let n = 256;
    let g = GraphFamily::Expander8.build(n, derive_seed(seed, 0));
    let uids = UidPool::random(g.node_count(), derive_seed(seed, 10));
    let leader_node = uids.min_uid_node() as NodeId;
    let faulty = FaultyTopology::new(
        StaticTopology::new(g),
        FaultConfig::crashes(0.001, 0.01),
        derive_seed(seed, 13),
    );
    let topo = ScheduledCrashes::new(faulty, vec![(leader_node, 300, u64::MAX)]);
    let mut e = service_engine(topo, &uids, 256, seed);
    let out = e.run_service(&ServiceConfig::rounds(1200).with_wedge_window(600));
    (uids, out)
}

#[test]
fn same_seed_service_runs_are_identical() {
    let (_, a) = churn_outcome(42);
    let (_, b) = churn_outcome(42);
    // Full structural equality: status, counters, engine metrics and the
    // entire epoch history — the multi-epoch trace is a pure function of
    // (seed, config).
    assert_eq!(a, b);
    // And the scenario is non-trivial: the scheduled crash forced at least
    // one re-election, so the equality above pins a multi-epoch trace.
    assert!(a.service.re_elections >= 1, "scenario must re-elect: {a:?}");
    assert!(a.epochs.len() >= 2, "multi-epoch trace expected: {:?}", a.epochs);
}

#[test]
fn multi_epoch_trace_is_pinned() {
    // Golden trace: clique-16, leader crashes permanently at round 150,
    // timeout 64, one 800-round service call. Any change to the round
    // executor, the maintenance protocol or the RNG streams shows up here.
    let seed = 7;
    let g = gen::clique(16);
    let uids = UidPool::random(16, derive_seed(seed, 10));
    let by_uid = nodes_by_uid(&uids);
    let topo =
        ScheduledCrashes::new(StaticTopology::new(g), vec![(by_uid[0] as NodeId, 150, u64::MAX)]);
    let mut e = service_engine(topo, &uids, 64, seed);
    let out = e.run_service(&ServiceConfig::rounds(800));
    assert_eq!(out.status, ServiceStatus::Completed);
    assert_eq!(out.rounds, 800);
    assert_eq!(out.final_epoch, 1);
    assert_eq!(out.final_leader, Some(uids.uid(by_uid[1])));
    assert_eq!(out.service.leaderless_rounds, 58);
    assert_eq!(out.service.dual_leader_rounds, 22);
    assert_eq!(out.service.stable_rounds, 714);
    assert_eq!(out.service.re_elections, 1);
    assert_eq!(out.service.max_concurrent_claimants, 15);
    assert_eq!(
        out.epochs,
        vec![
            EpochRecord {
                epoch: 0,
                started_round: 0,
                agreed_round: Some(17),
                leader: Some(uids.min_uid()),
            },
            EpochRecord {
                epoch: 1,
                started_round: 208,
                agreed_round: Some(220),
                leader: Some(uids.uid(by_uid[1])),
            },
        ]
    );
}

#[test]
fn re_election_completes_after_leader_crash_on_expander_1024() {
    // The ISSUE.md acceptance gate: schedule the epoch-0 leader to crash on
    // expander8-1024 and prove the service detects the death, opens term 1
    // and converges on the successor (second-smallest UID).
    let seed = 1;
    let n = 1024;
    let timeout = 256; // measured steady tail ≈ 60 → 4× margin
    let crash_at = 300;
    let g = GraphFamily::Expander8.build(n, derive_seed(seed, 0));
    let uids = UidPool::random(g.node_count(), derive_seed(seed, 10));
    let by_uid = nodes_by_uid(&uids);
    let successor = uids.uid(by_uid[1]);
    let topo = ScheduledCrashes::new(
        StaticTopology::new(g),
        vec![(by_uid[0] as NodeId, crash_at, u64::MAX)],
    );
    let mut e = service_engine(topo, &uids, timeout, seed);
    // Phase 1: elect and stabilize. Phase 2: crash, detect, re-elect —
    // fresh counters isolate the post-crash service quality.
    let pre = e.run_service(&ServiceConfig::rounds(crash_at - 1));
    assert_eq!(pre.final_leader, Some(uids.min_uid()), "epoch 0 must stabilize first");
    assert_eq!(pre.service.re_elections, 0, "no churn before the crash");

    let post = e.run_service(&ServiceConfig::rounds(1200));
    assert_eq!(post.status, ServiceStatus::Completed);
    assert_eq!(post.service.re_elections, 1, "exactly one term change: {post:?}");
    assert_eq!(post.final_epoch, 1);
    assert_eq!(post.final_leader, Some(successor), "term 1 must elect the successor");
    let term1 = post.epochs.last().expect("history is never empty");
    assert_eq!(term1.epoch, 1);
    assert!(
        term1.agreed_round.is_some(),
        "re-election must complete within the horizon: {term1:?}"
    );
    // Detection costs ≈ the staleness the survivors had already accrued at
    // the crash, so downtime lands near (but under) the full timeout.
    assert!(
        (1..=timeout + 100).contains(&post.service.leaderless_rounds),
        "leaderless ≈ timeout expected, got {}",
        post.service.leaderless_rounds
    );
}

#[test]
fn healthy_run_has_no_false_re_elections() {
    // A calibrated timeout must never fire on a fault-free run: heartbeat
    // staleness on expander8-256 tails out near 51 rounds, far under 256.
    let seed = 3;
    let g = GraphFamily::Expander8.build(256, derive_seed(seed, 0));
    let uids = UidPool::random(g.node_count(), derive_seed(seed, 10));
    let mut e = service_engine(StaticTopology::new(g), &uids, 256, seed);
    let out = e.run_service(&ServiceConfig::rounds(1500).with_wedge_window(512));
    assert_eq!(out.status, ServiceStatus::Completed);
    assert_eq!(out.service.re_elections, 0, "false-positive detection: {out:?}");
    assert_eq!(out.final_epoch, 0);
    assert_eq!(out.epochs.len(), 1);
    assert_eq!(out.final_leader, Some(uids.min_uid()));
    // Blind gossip starts every node as a claimant, so the network is never
    // leaderless on a healthy run — only briefly multi-claimant.
    assert_eq!(out.service.leaderless_rounds, 0);
    assert!(
        out.service.stable_rounds >= 1500 - 100,
        "steady state should dominate: {:?}",
        out.service
    );
}

#[test]
fn phased_service_calls_compose_into_one_execution() {
    // Two run_service calls on one engine are the same deterministic
    // execution as a single call covering the union of the horizons; only
    // the counter bucketing differs.
    let seed = 9;
    let build = || {
        let g = GraphFamily::Expander8.build(64, derive_seed(seed, 0));
        let uids = UidPool::random(g.node_count(), derive_seed(seed, 10));
        service_engine(StaticTopology::new(g), &uids, 128, seed)
    };
    let mut single = build();
    let whole = single.run_service(&ServiceConfig::rounds(500));

    let mut phased = build();
    let p1 = phased.run_service(&ServiceConfig::rounds(200));
    let p2 = phased.run_service(&ServiceConfig::rounds(300));

    assert_eq!(whole.final_leader, p2.final_leader);
    assert_eq!(whole.final_epoch, p2.final_epoch);
    assert_eq!(whole.rounds, p1.rounds + p2.rounds);
    let sum = |f: fn(&ServiceMetrics) -> u64| f(&p1.service) + f(&p2.service);
    assert_eq!(whole.service.leaderless_rounds, sum(|s| s.leaderless_rounds));
    assert_eq!(whole.service.dual_leader_rounds, sum(|s| s.dual_leader_rounds));
    assert_eq!(whole.service.stable_rounds, sum(|s| s.stable_rounds));
    assert_eq!(whole.service.re_elections, sum(|s| s.re_elections));
    // Engine-level metrics are cumulative over the whole execution, so the
    // second phase's snapshot must equal the single-call snapshot.
    assert_eq!(whole.metrics, p2.metrics);
}

#[test]
fn partitioned_network_is_diagnosed_wedged_not_timed_out() {
    // Two 8-cliques with no bridge: each side elects its own leader, both
    // sides' heartbeats stay fresh (no timeout ever fires), and the global
    // state freezes in disagreement. The wedge detector must diagnose this
    // as a dead end instead of letting the horizon burn.
    let seed = 5;
    let n = 16;
    let mut b = GraphBuilder::new(n);
    for side in 0..2u32 {
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                b.add_edge(side * 8 + i, side * 8 + j);
            }
        }
    }
    let g = b.build();
    let uids = UidPool::random(n, derive_seed(seed, 10));
    let mut e = service_engine(StaticTopology::new(g), &uids, 64, seed);
    let out = e.run_service(&ServiceConfig::rounds(4000).with_wedge_window(128));
    let ServiceStatus::Wedged(report) = out.status else {
        panic!("partitioned run must wedge, got {:?}", out.status);
    };
    assert_eq!(report.window, 128);
    assert!(out.rounds < 4000, "wedge must cut the run short, ran {}", out.rounds);
    // Both components keep connecting (the cliques are alive) without any
    // durable-state change — the signature of a wedge, not a stall.
    assert!(report.idle_connections > 0);
    // No global agreement is ever reached across the cut.
    assert_eq!(out.final_leader, None);
    assert_eq!(out.service.re_elections, 0, "fresh heartbeats must not time out");
}
