//! Statistical cross-validation: the claims experiments make about "A
//! reliably beats B" hold with proper significance tests, not just on
//! means of a few trials.

use mobile_telephone::analysis::compare::{bootstrap_mean_ci, mann_whitney_u};
use mobile_telephone::analysis::stats::Summary;
use mobile_telephone::prelude::*;

fn blind_gossip_sample(g: &Graph, trials: u64, base_seed: u64) -> Vec<f64> {
    (0..trials)
        .map(|t| {
            let n = g.node_count();
            let uids = UidPool::random(n, base_seed ^ t);
            let mut e = Engine::new(
                StaticTopology::new(g.clone()),
                ModelParams::mobile(0),
                ActivationSchedule::synchronized(n),
                BlindGossip::spawn(&uids),
                base_seed.wrapping_add(t * 7919),
            );
            e.run_to_stabilization(50_000_000).stabilized_round.expect("must stabilize") as f64
        })
        .collect()
}

fn rumor_sample(g: &Graph, ppush: bool, trials: u64, base_seed: u64) -> Vec<f64> {
    (0..trials)
        .map(|t| {
            let n = g.node_count();
            let seed = base_seed.wrapping_add(t * 104729);
            let r = if ppush {
                let mut e = Engine::new(
                    StaticTopology::new(g.clone()),
                    ModelParams::mobile(1),
                    ActivationSchedule::synchronized(n),
                    Ppush::spawn(n, 1),
                    seed,
                );
                e.run_to_full_information(50_000_000).stabilized_round
            } else {
                let mut e = Engine::new(
                    StaticTopology::new(g.clone()),
                    ModelParams::mobile(0),
                    ActivationSchedule::synchronized(n),
                    PushPull::spawn(n, 1),
                    seed,
                );
                e.run_to_full_information(50_000_000).stabilized_round
            };
            r.expect("must inform all") as f64
        })
        .collect()
}

#[test]
fn ppush_beats_push_pull_significantly_on_hub_graph() {
    let g = gen::line_of_stars(5, 10);
    let pp = rumor_sample(&g, false, 12, 1);
    let pr = rumor_sample(&g, true, 12, 2);
    let (_, p) = mann_whitney_u(&pp, &pr);
    let mean_pp = Summary::of(&pp).mean;
    let mean_pr = Summary::of(&pr).mean;
    assert!(mean_pr < mean_pp, "PPUSH mean {mean_pr} should beat PUSH-PULL {mean_pp}");
    assert!(p < 0.01, "difference should be significant: p = {p}");
}

#[test]
fn blind_gossip_clique_vs_line_of_stars_significant() {
    // Theorem VI.1's α and Δ dependence: the line of stars must be
    // significantly slower than a clique of comparable size.
    let clique = gen::clique(30);
    let stars = gen::line_of_stars(5, 5);
    let fast = blind_gossip_sample(&clique, 10, 3);
    let slow = blind_gossip_sample(&stars, 10, 4);
    let (_, p) = mann_whitney_u(&fast, &slow);
    assert!(Summary::of(&slow).mean > 2.0 * Summary::of(&fast).mean);
    assert!(p < 0.01, "p = {p}");
}

#[test]
fn bootstrap_ci_reproducible_and_tight_for_clique() {
    let g = gen::clique(24);
    let sample = blind_gossip_sample(&g, 20, 5);
    let ci1 = bootstrap_mean_ci(&sample, 300, 0.05, 9);
    let ci2 = bootstrap_mean_ci(&sample, 300, 0.05, 9);
    assert_eq!(ci1, ci2, "bootstrap must be deterministic");
    let mean = Summary::of(&sample).mean;
    assert!(ci1.0 <= mean && mean <= ci1.1);
    // Clique stabilization is tightly concentrated: CI within ±50% of mean.
    assert!(ci1.1 - ci1.0 < mean, "CI implausibly wide: {ci1:?} around {mean}");
}

#[test]
fn identical_configurations_are_statistically_indistinguishable() {
    // Two samples from the same configuration with different seeds should
    // NOT be significantly different (sanity check on the test itself).
    let g = gen::clique(20);
    let a = blind_gossip_sample(&g, 15, 100);
    let b = blind_gossip_sample(&g, 15, 200);
    let (_, p) = mann_whitney_u(&a, &b);
    assert!(p > 0.01, "same distribution flagged as different: p = {p}");
}
