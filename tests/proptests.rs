//! Cross-crate property tests: for arbitrary topologies, seeds, and
//! schedules, the system-level invariants of the leader election problem
//! hold.
//!
//! Cases are generated deterministically by `mtm-testkit` (the offline
//! replacement for proptest); each test reports the failing case seed on
//! panic.

use mobile_telephone::prelude::*;
use mtm_testkit::{run_cases, Rng, SmallRng};

const FAMILIES: &[GraphFamily] = &[
    GraphFamily::Clique,
    GraphFamily::Path,
    GraphFamily::Cycle,
    GraphFamily::Star,
    GraphFamily::LineOfStars,
    GraphFamily::Expander3,
    GraphFamily::BinaryTree,
];

fn arb_family(rng: &mut SmallRng) -> GraphFamily {
    FAMILIES[rng.gen_range(0..FAMILIES.len())]
}

#[test]
fn blind_gossip_always_elects_min_uid() {
    run_cases(0xF701, 12, |_case, rng| {
        let family = arb_family(rng);
        let n = rng.gen_range(4..14usize);
        let seed = rng.gen::<u64>();
        let g = family.build(n, seed);
        let n_actual = g.node_count();
        let uids = UidPool::random(n_actual, seed ^ 1);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n_actual),
            BlindGossip::spawn(&uids),
            seed ^ 2,
        );
        let out = e.run_to_stabilization(20_000_000);
        assert_eq!(out.winner, Some(uids.min_uid()));
    });
}

#[test]
fn leader_is_always_a_real_uid_at_every_round() {
    run_cases(0xF702, 12, |_case, rng| {
        let family = arb_family(rng);
        let seed = rng.gen::<u64>();
        let g = family.build(10, seed);
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 3);
        let mut uid_set: Vec<u64> = uids.as_slice().to_vec();
        uid_set.sort_unstable();
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            BlindGossip::spawn(&uids),
            seed ^ 4,
        );
        for _ in 0..200 {
            e.step();
            for u in 0..n {
                let leader = e.node(u).leader();
                assert!(
                    uid_set.binary_search(&leader).is_ok(),
                    "node {u} points at a UID that does not exist: {leader:#x}"
                );
            }
        }
    });
}

#[test]
fn blind_gossip_leader_is_monotone_per_node() {
    run_cases(0xF703, 12, |_case, rng| {
        let seed = rng.gen::<u64>();
        let g = gen::random_regular(12, 3, seed % 1000);
        let uids = UidPool::random(12, seed ^ 5);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(12),
            BlindGossip::spawn(&uids),
            seed ^ 6,
        );
        let mut last: Vec<u64> = (0..12).map(|u| e.node(u).leader()).collect();
        for _ in 0..300 {
            e.step();
            for (u, prev) in last.iter_mut().enumerate() {
                let now = e.node(u).leader();
                assert!(now <= *prev, "node {u} leader increased {prev} -> {now}");
                *prev = now;
            }
        }
    });
}

#[test]
fn bit_convergence_winner_is_min_pair() {
    run_cases(0xF704, 12, |_case, rng| {
        let family = arb_family(rng);
        let seed = rng.gen::<u64>();
        let g = family.build(12, seed);
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 7);
        let config = TagConfig::for_network(n, g.max_degree());
        let nodes = BitConvergence::spawn(&uids, config, seed ^ 8);
        // The paper's analysis assumes all ID tags are unique (w.h.p. via
        // β·log N bits). At n = 12 with k ≈ 11 bits the birthday collision
        // probability is a few percent, and a collision on the *minimal*
        // tag deadlocks stabilization (see experiment A1) — so, like the
        // analysis, condition on uniqueness.
        let mut tags: Vec<u64> = nodes.iter().map(|p| p.active_pair().tag).collect();
        tags.sort_unstable();
        if tags.windows(2).any(|w| w[0] == w[1]) {
            return; // discard the case, as `prop_assume!` did
        }
        let expect = nodes.iter().map(|p| p.active_pair()).min().expect("n > 0").uid;
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            nodes,
            seed ^ 9,
        );
        let out = e.run_to_stabilization(20_000_000);
        assert_eq!(out.winner, Some(expect));
    });
}

#[test]
fn nonsync_converges_under_arbitrary_activation_schedules() {
    run_cases(0xF705, 12, |_case, rng| {
        let seed = rng.gen::<u64>();
        let window = rng.gen_range(1..120u64);
        let g = gen::random_regular(10, 3, seed % 999);
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 10);
        let config = TagConfig::for_network(n, 3);
        let nodes = NonSyncBitConvergence::spawn(&uids, config, seed ^ 11);
        // Condition on unique ID tags, as the paper's analysis does: a
        // collision on the minimal tag deadlocks stabilization (nodes with
        // identical tags advertise identical bits and never connect — the
        // failure mode experiment A1 documents).
        let mut tags: Vec<u64> = nodes.iter().map(|p| p.best_pair().tag).collect();
        tags.sort_unstable();
        if tags.windows(2).any(|w| w[0] == w[1]) {
            return; // discard the case, as `prop_assume!` did
        }
        let expect = nodes.iter().map(|p| p.best_pair()).min().expect("n > 0").uid;
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(config.nonsync_tag_bits()),
            ActivationSchedule::staggered_uniform(n, window, seed ^ 12),
            nodes,
            seed ^ 13,
        );
        let out = e.run_to_stabilization(20_000_000);
        assert_eq!(out.winner, Some(expect));
    });
}

#[test]
fn engine_conservation_under_random_protocol_mix() {
    run_cases(0xF706, 12, |_case, rng| {
        // Proposals are partitioned into connections and rejections, and
        // per-round connections never exceed n/2, for arbitrary seeds.
        let seed = rng.gen::<u64>();
        let rounds = rng.gen_range(10..200u64);
        let g = gen::erdos_renyi_connected(14, 0.3, seed % 997);
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 14);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            BlindGossip::spawn(&uids),
            seed ^ 15,
        );
        e.enable_tracing();
        e.run_rounds(rounds);
        let m = e.metrics();
        assert_eq!(m.proposals, m.connections + m.rejected_proposals);
        for t in e.traces() {
            assert!(t.connections as usize <= n / 2);
            assert!(t.proposals >= t.connections);
        }
    });
}

#[test]
fn stabilized_means_unanimous_and_permanent() {
    run_cases(0xF707, 12, |_case, rng| {
        let seed = rng.gen::<u64>();
        let g = gen::line_of_stars(3, 2);
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 16);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            BlindGossip::spawn(&uids),
            seed ^ 17,
        );
        let out = e.run_to_stabilization(20_000_000);
        let winner = out.winner.expect("line-of-stars stabilizes within budget");
        for extra in 0..100 {
            e.step();
            assert_eq!(e.leaders_agree(), Some(winner), "diverged {extra} rounds later");
        }
    });
}

/// The executable form of DESIGN.md's substitution rule: a full protocol
/// execution — including every `RoundTrace` entry — is a pure function of
/// `(seed, config)`, across graph families and across both paper
/// protocols.
#[test]
fn same_seed_runs_produce_identical_round_traces() {
    run_cases(0xF708, 10, |_case, rng| {
        let family = arb_family(rng);
        let n = rng.gen_range(4..12usize);
        let seed = rng.gen::<u64>();

        let run_blind = |seed: u64| {
            let g = family.build(n, seed);
            let nn = g.node_count();
            let uids = UidPool::random(nn, seed ^ 21);
            let mut e = Engine::new(
                StaticTopology::new(g),
                ModelParams::mobile(0),
                ActivationSchedule::synchronized(nn),
                BlindGossip::spawn(&uids),
                seed ^ 22,
            );
            e.enable_tracing();
            e.run_rounds(200);
            (e.metrics(), e.traces().to_vec())
        };
        assert_eq!(run_blind(seed), run_blind(seed), "BlindGossip trace must be seed-pure");

        let run_bits = |seed: u64| {
            let g = family.build(n, seed);
            let nn = g.node_count();
            let uids = UidPool::random(nn, seed ^ 23);
            let config = TagConfig::for_network(nn, g.max_degree());
            let nodes = BitConvergence::spawn(&uids, config, seed ^ 24);
            let mut e = Engine::new(
                StaticTopology::new(g),
                ModelParams::mobile(1),
                ActivationSchedule::synchronized(nn),
                nodes,
                seed ^ 25,
            );
            e.enable_tracing();
            e.run_rounds(200);
            (e.metrics(), e.traces().to_vec())
        };
        assert_eq!(run_bits(seed), run_bits(seed), "BitConvergence trace must be seed-pure");
    });
}

/// The engine's own determinism entry point agrees: replaying a fixed
/// `(seed, config)` through [`Engine::determinism_self_check`] reports no
/// divergence for a real paper protocol.
#[test]
fn engine_determinism_self_check_entry_point() {
    run_cases(0xF709, 6, |_case, rng| {
        let family = arb_family(rng);
        let n = rng.gen_range(4..12usize);
        let seed = rng.gen::<u64>();
        let metrics = Engine::determinism_self_check(
            || {
                let g = family.build(n, seed);
                let nn = g.node_count();
                let uids = UidPool::random(nn, seed ^ 31);
                Engine::new(
                    StaticTopology::new(g),
                    ModelParams::mobile(0),
                    ActivationSchedule::synchronized(nn),
                    BlindGossip::spawn(&uids),
                    seed ^ 32,
                )
            },
            120,
        )
        .expect("same (seed, config) must replay identically");
        assert_eq!(metrics.rounds, 120);
    });
}
