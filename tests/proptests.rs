//! Cross-crate property tests: for arbitrary topologies, seeds, and
//! schedules, the system-level invariants of the leader election problem
//! hold.

use mobile_telephone::prelude::*;
use proptest::prelude::*;

/// Strategy: a small connected graph from a random family and size.
fn arb_family() -> impl Strategy<Value = GraphFamily> {
    prop::sample::select(vec![
        GraphFamily::Clique,
        GraphFamily::Path,
        GraphFamily::Cycle,
        GraphFamily::Star,
        GraphFamily::LineOfStars,
        GraphFamily::Expander3,
        GraphFamily::BinaryTree,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn blind_gossip_always_elects_min_uid(
        family in arb_family(),
        n in 4usize..14,
        seed in any::<u64>(),
    ) {
        let g = family.build(n, seed);
        let n_actual = g.node_count();
        let uids = UidPool::random(n_actual, seed ^ 1);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n_actual),
            BlindGossip::spawn(&uids),
            seed ^ 2,
        );
        let out = e.run_to_stabilization(20_000_000);
        prop_assert_eq!(out.winner, Some(uids.min_uid()));
    }

    #[test]
    fn leader_is_always_a_real_uid_at_every_round(
        family in arb_family(),
        seed in any::<u64>(),
    ) {
        let g = family.build(10, seed);
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 3);
        let uid_set: std::collections::HashSet<u64> = uids.as_slice().iter().copied().collect();
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            BlindGossip::spawn(&uids),
            seed ^ 4,
        );
        for _ in 0..200 {
            e.step();
            for u in 0..n {
                let leader = e.node(u).leader();
                prop_assert!(uid_set.contains(&leader),
                    "node {} points at a UID that does not exist: {:#x}", u, leader);
            }
        }
    }

    #[test]
    fn blind_gossip_leader_is_monotone_per_node(
        seed in any::<u64>(),
    ) {
        let g = gen::random_regular(12, 3, seed % 1000);
        let uids = UidPool::random(12, seed ^ 5);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(12),
            BlindGossip::spawn(&uids),
            seed ^ 6,
        );
        let mut last: Vec<u64> = (0..12).map(|u| e.node(u).leader()).collect();
        for _ in 0..300 {
            e.step();
            for u in 0..12 {
                let now = e.node(u).leader();
                prop_assert!(now <= last[u], "node {} leader increased {} -> {}", u, last[u], now);
                last[u] = now;
            }
        }
    }

    #[test]
    fn bit_convergence_winner_is_min_pair(
        family in arb_family(),
        seed in any::<u64>(),
    ) {
        let g = family.build(12, seed);
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 7);
        let config = TagConfig::for_network(n, g.max_degree());
        let nodes = BitConvergence::spawn(&uids, config, seed ^ 8);
        // The paper's analysis assumes all ID tags are unique (w.h.p. via
        // β·log N bits). At n = 12 with k ≈ 11 bits the birthday collision
        // probability is a few percent, and a collision on the *minimal*
        // tag deadlocks stabilization (see experiment A1) — so, like the
        // analysis, condition on uniqueness.
        let mut tags: Vec<u64> = nodes.iter().map(|p| p.active_pair().tag).collect();
        tags.sort_unstable();
        prop_assume!(tags.windows(2).all(|w| w[0] != w[1]));
        let expect = nodes.iter().map(|p| p.active_pair()).min().unwrap().uid;
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            nodes,
            seed ^ 9,
        );
        let out = e.run_to_stabilization(20_000_000);
        prop_assert_eq!(out.winner, Some(expect));
    }

    #[test]
    fn nonsync_converges_under_arbitrary_activation_schedules(
        seed in any::<u64>(),
        window in 1u64..120,
    ) {
        let g = gen::random_regular(10, 3, seed % 999);
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 10);
        let config = TagConfig::for_network(n, 3);
        let nodes = NonSyncBitConvergence::spawn(&uids, config, seed ^ 11);
        // Condition on unique ID tags, as the paper's analysis does: a
        // collision on the minimal tag deadlocks stabilization (nodes with
        // identical tags advertise identical bits and never connect — the
        // failure mode experiment A1 documents).
        let mut tags: Vec<u64> = nodes.iter().map(|p| p.best_pair().tag).collect();
        tags.sort_unstable();
        prop_assume!(tags.windows(2).all(|w| w[0] != w[1]));
        let expect = nodes.iter().map(|p| p.best_pair()).min().unwrap().uid;
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(config.nonsync_tag_bits()),
            ActivationSchedule::staggered_uniform(n, window, seed ^ 12),
            nodes,
            seed ^ 13,
        );
        let out = e.run_to_stabilization(20_000_000);
        prop_assert_eq!(out.winner, Some(expect));
    }

    #[test]
    fn engine_conservation_under_random_protocol_mix(
        seed in any::<u64>(),
        rounds in 10u64..200,
    ) {
        // Proposals are partitioned into connections and rejections, and
        // per-round connections never exceed n/2, for arbitrary seeds.
        let g = gen::erdos_renyi_connected(14, 0.3, seed % 997);
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 14);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            BlindGossip::spawn(&uids),
            seed ^ 15,
        );
        e.enable_tracing();
        e.run_rounds(rounds);
        let m = e.metrics();
        prop_assert_eq!(m.proposals, m.connections + m.rejected_proposals);
        for t in e.traces() {
            prop_assert!(t.connections as usize <= n / 2);
            prop_assert!(t.proposals >= t.connections);
        }
    }

    #[test]
    fn stabilized_means_unanimous_and_permanent(
        seed in any::<u64>(),
    ) {
        let g = gen::line_of_stars(3, 2);
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 16);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            BlindGossip::spawn(&uids),
            seed ^ 17,
        );
        let out = e.run_to_stabilization(20_000_000);
        let winner = out.winner.unwrap();
        for extra in 0..100 {
            e.step();
            prop_assert_eq!(e.leaders_agree(), Some(winner), "diverged {} rounds later", extra);
        }
    }
}
