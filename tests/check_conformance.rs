//! Checker ↔ engine conformance: every state the model checker can reach,
//! the production [`Engine`] reaches too, bit for bit.
//!
//! `mtm-check` explores an *abstract* transition relation (its own
//! enumeration of advertise choices, scans, matchings and payload
//! exchanges). The engine executes the *concrete* one, audit layer
//! included. These tests sample reachable states across random small
//! topologies, specs, and adversary powers (proposal loss, crashes), replay
//! each state's minimal witness schedule through
//! [`mtm_engine::Engine::step_scripted`], and require identical durable
//! state words and network fingerprints. Any drift between the two
//! semantics — a phase reordered, a crash observed differently, an
//! acceptance rule loosened — fails here before it can corrupt a
//! certification run.

use mtm_check::{
    analyze, explore, BitConvergenceSpec, BlindGossipSpec, CheckConfig, CheckSpec,
    MaintainedGossipSpec, PushPullSpec,
};
use mtm_core::TagConfig;
use mtm_graph::{gen, Graph};
use mtm_testkit::{run_cases, Rng, SmallRng};

fn arb_graph(rng: &mut SmallRng) -> Graph {
    let n = rng.gen_range(2..=5usize);
    match rng.gen_range(0..4u32) {
        0 => gen::clique(n),
        1 => gen::path(n),
        2 => gen::cycle(n.max(3)),
        _ => gen::star(n.max(2)),
    }
}

/// Replay every `stride`-th reachable state plus the deepest one.
fn assert_conformant<S: CheckSpec>(spec: &S, graph: &Graph, cfg: &CheckConfig, stride: usize) {
    let ex = explore(spec, graph, cfg);
    assert!(ex.state_count() > 0);
    let deepest =
        (0..ex.state_count() as u32).max_by_key(|&s| ex.depth_of(s)).expect("nonempty exploration");
    let sampled = (0..ex.state_count() as u32).step_by(stride.max(1)).chain([deepest]);
    for s in sampled {
        let outcome = mtm_check::replay_state(spec, graph, &ex, s).unwrap_or_else(|e| {
            panic!("{} on {:?}: {e}", spec.name(), graph);
        });
        assert_eq!(outcome.rounds, u64::from(ex.depth_of(s)), "schedule length mismatch");
    }
}

#[test]
fn blind_gossip_schedules_replay_exactly() {
    run_cases(0xC0F0_0001, 10, |_case, rng| {
        let g = arb_graph(rng);
        let uids: Vec<u64> = (0..g.node_count()).map(|_| rng.gen_range(1..100)).collect();
        let spec = BlindGossipSpec { uids };
        let cfg = CheckConfig { horizon: 6, max_states: 30_000, ..CheckConfig::default() };
        assert_conformant(&spec, &g, &cfg, 7);
    });
}

#[test]
fn push_pull_schedules_replay_exactly_with_loss() {
    run_cases(0xC0F0_0002, 10, |_case, rng| {
        let g = arb_graph(rng);
        let n = g.node_count();
        let spec = PushPullSpec { n, sources: rng.gen_range(1..=n) };
        let cfg =
            CheckConfig { horizon: 6, max_states: 30_000, loss: true, ..CheckConfig::default() };
        assert_conformant(&spec, &g, &cfg, 5);
    });
}

#[test]
fn bit_convergence_schedules_replay_exactly() {
    run_cases(0xC0F0_0003, 6, |_case, rng| {
        let g = arb_graph(rng);
        let n = g.node_count();
        let config = TagConfig::new(n.max(2), 3.0, 2);
        let max_tag = (1u64 << config.k) - 1;
        let spec = BitConvergenceSpec {
            uids: (1..=n as u64).collect(),
            tags: (0..n).map(|_| rng.gen_range(0..=max_tag)).collect(),
            config,
        };
        let cfg = CheckConfig { horizon: 5, max_states: 60_000, ..CheckConfig::default() };
        assert_conformant(&spec, &g, &cfg, 19);
    });
}

#[test]
fn schedules_with_crashes_replay_exactly() {
    // Crash choices are the subtlest part of the correspondence: the
    // checker must observe a crashed node exactly as ScheduledCrashes
    // does (down from the start of its crash round, scans emptied).
    run_cases(0xC0F0_0004, 8, |_case, rng| {
        let g = arb_graph(rng);
        let uids: Vec<u64> = (0..g.node_count()).map(|_| rng.gen_range(1..100)).collect();
        let spec = BlindGossipSpec { uids };
        let cfg = CheckConfig {
            horizon: 4,
            max_states: 40_000,
            max_crashes: 1,
            ..CheckConfig::default()
        };
        assert_conformant(&spec, &g, &cfg, 11);
    });
}

#[test]
fn maintained_gossip_replays_under_loss_and_crashes() {
    let g = gen::path(3);
    let spec = MaintainedGossipSpec { uids: vec![3, 1, 2], timeout: 3 };
    let cfg = CheckConfig { horizon: 4, max_states: 60_000, loss: true, max_crashes: 1 };
    assert_conformant(&spec, &g, &cfg, 23);
}

#[test]
fn analysis_agrees_with_engine_on_agreed_states() {
    // A state the checker marks "agreed" must be agreed in the engine's
    // replay of it too — the predicate is evaluated on identical words.
    run_cases(0xC0F0_0005, 6, |_case, rng| {
        let g = arb_graph(rng);
        let uids: Vec<u64> = (0..g.node_count()).map(|u| u as u64 + 1).collect();
        let spec = BlindGossipSpec { uids };
        let cfg = CheckConfig { horizon: 5, max_states: 30_000, ..CheckConfig::default() };
        let ex = explore(&spec, &g, &cfg);
        let an = analyze(&spec, &ex);
        if let Some(s) = an.first_agreed {
            let outcome = mtm_check::replay_state(&spec, &g, &ex, s).expect("agreed state replays");
            assert_eq!(outcome.words, mtm_check::explore::raw_words(ex.nodes_of(s)));
        }
        let _ = rng.gen_range(0..2u32); // consume entropy so cases differ
    });
}
