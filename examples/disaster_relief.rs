//! Disaster relief: two isolated response teams merge and re-elect one
//! coordinator (self-stabilization, §VIII).
//!
//! Infrastructure is down after a disaster; two rescue teams each form
//! their own smartphone mesh and elect a coordinator. When the teams meet,
//! a single radio link bridges the meshes — and the combined network must
//! converge to one coordinator without any reset signal. This is exactly
//! the self-stabilization property of the non-synchronized bit convergence
//! algorithm: its whole state is "the smallest ID pair seen," so the merged
//! network behaves like a fresh execution.
//!
//! Run with: `cargo run --release --example disaster_relief`

use mobile_telephone::prelude::*;

fn main() {
    let seed = 31;
    let team = 24; // phones per team

    let north = gen::random_regular(team, 4, seed);
    let south = gen::random_regular(team, 4, seed + 1);
    let join_round = 40_000;
    // One bridge link between phone 0 (north) and phone `team` (south).
    let topo = JoinSchedule::new(&north, &south, &[(0, team as u32)], join_round);

    let n = 2 * team;
    let uids = UidPool::random(n, seed);
    let config = TagConfig::for_network(n, 5);
    let nodes = NonSyncBitConvergence::spawn(&uids, config, seed);

    let mut engine = Engine::new(
        topo,
        ModelParams::mobile(config.nonsync_tag_bits()),
        ActivationSchedule::synchronized(n),
        nodes,
        seed,
    );

    // Phase 1: the teams operate in isolation.
    engine.run_rounds(join_round - 1);
    let north_leader = engine.node(0).leader();
    let south_leader = engine.node(team).leader();
    let north_agrees = engine.nodes()[..team].iter().all(|p| p.leader() == north_leader);
    let south_agrees = engine.nodes()[team..].iter().all(|p| p.leader() == south_leader);
    println!("before the teams meet (round {}):", join_round - 1);
    println!("  north team: coordinator {north_leader:#018x} (unanimous: {north_agrees})");
    println!("  south team: coordinator {south_leader:#018x} (unanimous: {south_agrees})");
    assert!(north_agrees && south_agrees, "each team should converge in isolation");
    assert_ne!(north_leader, south_leader, "isolated teams elect different coordinators");

    // Phase 2: the bridge link appears; no node is told anything.
    let outcome = engine.run_to_stabilization(500_000_000);
    let stabilized = outcome.stabilized_round.expect("merged mesh must converge");
    println!("\nbridge link established at round {join_round}");
    println!(
        "merged mesh converged at round {stabilized} ({} rounds after the merge)",
        stabilized - join_round + 1
    );
    println!("  unified coordinator: {:#018x}", outcome.winner.unwrap());
    assert!(
        outcome.winner == Some(north_leader) || outcome.winner == Some(south_leader),
        "the unified coordinator is whichever team leader holds the smaller ID pair"
    );
}
