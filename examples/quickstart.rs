//! Quickstart: elect a leader three ways on the same network.
//!
//! Builds one 64-node expander topology and runs all three of the paper's
//! leader election algorithms on it — blind gossip (`b = 0`), bit
//! convergence (`b = 1`), and non-synchronized bit convergence
//! (`b = log log n + O(1)`) — printing rounds-to-stabilization for each.
//!
//! Run with: `cargo run --release --example quickstart`

use mobile_telephone::prelude::*;

fn main() {
    let seed = 2017;
    let graph = GraphFamily::Expander8.build(64, seed);
    let n = graph.node_count();
    let delta = graph.max_degree();
    println!("network: random 8-regular expander, n = {n}, Δ = {delta}, static (τ = ∞)\n");

    // Every trial is a pure function of its seed: same seed, same result.
    let uids = UidPool::random(n, seed);
    println!("smallest UID in the network: {:#018x}\n", uids.min_uid());

    // --- Blind gossip: no advertising bits at all. -----------------------
    let mut engine = Engine::new(
        StaticTopology::new(graph.clone()),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        BlindGossip::spawn(&uids),
        seed,
    );
    let blind = engine.run_to_stabilization(10_000_000);
    report("blind gossip      (b = 0)", &blind);
    assert_eq!(blind.winner, Some(uids.min_uid()));

    // --- Bit convergence: one advertising bit per round. -----------------
    let config = TagConfig::for_network(n, delta);
    let mut engine = Engine::new(
        StaticTopology::new(graph.clone()),
        ModelParams::mobile(1),
        ActivationSchedule::synchronized(n),
        BitConvergence::spawn(&uids, config, seed),
        seed,
    );
    let bitconv = engine.run_to_stabilization(10_000_000);
    report("bit convergence   (b = 1)", &bitconv);

    // --- Non-synchronized bit convergence: survives staggered starts. ----
    let mut engine = Engine::new(
        StaticTopology::new(graph),
        ModelParams::mobile(config.nonsync_tag_bits()),
        ActivationSchedule::staggered_uniform(n, 100, seed),
        NonSyncBitConvergence::spawn(&uids, config, seed),
        seed,
    );
    let nonsync = engine.run_to_stabilization(10_000_000);
    report(&format!("nonsync bitconv   (b = {})", config.nonsync_tag_bits()), &nonsync);
    println!(
        "\nnonsync stabilized {} rounds after the last of its staggered activations",
        nonsync.rounds_after_activation.unwrap()
    );
}

fn report(name: &str, outcome: &RunOutcome) {
    match outcome.stabilized_round {
        Some(r) => println!(
            "{name}: stabilized in {r:>6} rounds   (leader {:#018x}, {} connections)",
            outcome.winner.unwrap(),
            outcome.metrics.connections
        ),
        None => println!("{name}: did not stabilize"),
    }
}
