//! Coordination stack: elect → agree → order → count, all in-model.
//!
//! The paper's introduction argues leader election "supports the
//! development of more sophisticated distributed systems by simplifying
//! tasks such as event ordering, agreement, and synchronization." This
//! example runs that whole stack over one mesh:
//!
//! 1. **elect** a leader with bit convergence (`b = 1`);
//! 2. **agree** on a configuration bit with leader-based consensus;
//! 3. **order** one event per phone via the elected sequencer;
//! 4. **count** the mesh with gossip size estimation.
//!
//! Every stage respects the mobile telephone model's constraints (one
//! connection per node per round, constant-size payloads).
//!
//! Run with: `cargo run --release --example coordination`

use mobile_telephone::apps::aggregation::ESTIMATOR_WIDTH;
use mobile_telephone::prelude::*;

fn main() {
    let seed = 11;
    let n = 48;
    let graph = GraphFamily::Expander8.build(n, seed);
    let uids = UidPool::random(n, seed);
    println!("mesh: 8-regular expander, n = {n}\n");

    // 1. Elect.
    let config = TagConfig::for_network(n, graph.max_degree());
    let mut election = Engine::new(
        StaticTopology::new(graph.clone()),
        ModelParams::mobile(1),
        ActivationSchedule::synchronized(n),
        BitConvergence::spawn(&uids, config, seed),
        seed,
    );
    let elected = election.run_to_stabilization(10_000_000);
    let leader_uid = elected.winner.expect("election stabilizes");
    let leader_index = uids.as_slice().iter().position(|&u| u == leader_uid).unwrap();
    println!(
        "1. elect:  leader {leader_uid:#018x} in {} rounds (bit convergence, b = 1)",
        elected.stabilized_round.unwrap()
    );

    // 2. Agree: each phone proposes "encrypt on" iff its index is even;
    // the decision is the leader's preference.
    let inputs: Vec<(u64, bool)> =
        uids.as_slice().iter().enumerate().map(|(i, &u)| (u, i % 2 == 0)).collect();
    let mut consensus = Engine::new(
        StaticTopology::new(graph.clone()),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        LeaderConsensus::spawn(&inputs),
        seed ^ 1,
    );
    let agreed = consensus.run_to_stabilization(10_000_000);
    println!(
        "2. agree:  decision = {} in {} rounds (consensus follows the min-UID holder)",
        consensus.node(0).decision(),
        agreed.stabilized_round.unwrap()
    );

    // 3. Order: the leader sequences one event per phone.
    let mut params = ModelParams::mobile(0);
    params.max_payload_bits = 64;
    let mut ordering = Engine::new(
        StaticTopology::new(graph.clone()),
        params,
        ActivationSchedule::synchronized(n),
        EventOrdering::spawn(uids.as_slice(), leader_index),
        seed ^ 2,
    );
    use mobile_telephone::apps::ordering::EventOrdering;
    let done = ordering
        .run_until(10_000_000, |e| e.nodes().iter().all(|p| p.known_count() == n))
        .expect("ordering completes");
    let order = ordering.node(0).known_assignments();
    println!(
        "3. order:  {n} events sequenced in {done} rounds (seq 0 → {:#018x}, the leader)",
        order[0].event
    );

    // 4. Count: extrema-propagation size estimate.
    let mut params = ModelParams::mobile(0);
    params.max_payload_bits = (ESTIMATOR_WIDTH * 64) as u32;
    let mut counting = Engine::new(
        StaticTopology::new(graph),
        params,
        ActivationSchedule::synchronized(n),
        SizeEstimator::spawn(n, seed ^ 3),
        seed ^ 4,
    );
    let converged = counting
        .run_until(10_000_000, |e| {
            let first = e.node(0).minima();
            e.nodes().iter().all(|p| p.minima() == first)
        })
        .expect("estimates converge");
    println!(
        "4. count:  n̂ = {:.1} (true n = {n}) in {converged} rounds (extrema propagation)",
        counting.node(0).estimate()
    );
}
