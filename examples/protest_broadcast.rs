//! Protest broadcast: censorship-resistant rumor spreading, `b = 0` vs
//! `b = 1`.
//!
//! The paper's introduction cites peer-to-peer chat during the Hong Kong
//! protests: a message must reach everyone without touching monitored
//! infrastructure. Hub-heavy contact topologies (a few well-connected
//! organizers, many loosely attached participants) are exactly where the
//! mobile telephone model's one-connection-per-round limit bites. This
//! example spreads one message through a line-of-stars crowd with plain
//! PUSH-PULL (no advertising) and with PPUSH (one advertised bit saying
//! "I still need the message") and compares.
//!
//! Run with: `cargo run --release --example protest_broadcast`

use mobile_telephone::prelude::*;

fn main() {
    let seed = 99;
    // 12 organizers in a chain, each with 12 followers.
    let graph = gen::line_of_stars(12, 12);
    let n = graph.node_count();
    println!(
        "contact graph: line of 12 stars (n = {n}, Δ = {}), message starts at one node\n",
        graph.max_degree()
    );

    let trials = 9;
    let push_pull = median(trials, |t| {
        let mut e = Engine::new(
            StaticTopology::new(graph.clone()),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            PushPull::spawn(n, 1),
            seed + t,
        );
        e.run_to_full_information(50_000_000).stabilized_round.expect("PUSH-PULL must finish")
    });
    println!("PUSH-PULL (b = 0): median {push_pull} rounds to inform all {n} phones");

    let ppush = median(trials, |t| {
        let mut e = Engine::new(
            StaticTopology::new(graph.clone()),
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            Ppush::spawn(n, 1),
            seed + t,
        );
        e.run_to_full_information(50_000_000).stabilized_round.expect("PPUSH must finish")
    });
    println!("PPUSH     (b = 1): median {ppush} rounds to inform all {n} phones");

    println!(
        "\none advertised bit makes every proposal productive: {:.1}× faster",
        push_pull as f64 / ppush as f64
    );
    assert!(ppush < push_pull, "PPUSH should win on a hub-heavy topology");

    // The same spread under churn: organizers reshuffle their followers
    // every round (τ = 1) — PPUSH needs no stability to keep its edge.
    let ppush_churn = median(trials, |t| {
        let topo = LineOfStarsShuffle::new(12, 12, 1, seed + t);
        let mut e = Engine::new(
            topo,
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            Ppush::spawn(n, 1),
            seed + t,
        );
        e.run_to_full_information(50_000_000)
            .stabilized_round
            .expect("PPUSH under churn must finish")
    });
    println!("PPUSH under τ = 1 churn: median {ppush_churn} rounds");
}

fn median(trials: u64, mut run: impl FnMut(u64) -> u64) -> u64 {
    let mut xs: Vec<u64> = (0..trials).map(&mut run).collect();
    xs.sort_unstable();
    xs[xs.len() / 2]
}
