//! Festival mesh: leader election over a moving crowd with late joiners.
//!
//! The paper's motivating scenario: a crowd of smartphones at a festival
//! where cellular coverage is overwhelmed. Phones form proximity
//! connections (Multipeer-style), people wander (random waypoint mobility),
//! and phones join the mesh at different times — exactly the
//! asynchronous-activation setting of §VIII. The mesh needs one
//! coordinator (e.g. to sequence a shared photo stream); we elect it with
//! non-synchronized bit convergence and watch agreement form.
//!
//! Run with: `cargo run --release --example festival_mesh`

use mobile_telephone::prelude::*;

fn main() {
    let seed = 7;
    let n = 120;

    // Phones on a unit-square festival ground, radio range 0.18, strolling
    // between waypoints; topology re-forms every 20 rounds (τ = 20).
    let mobility = WaypointMobility::new(n, 0.18, 0.02, 20, seed);

    // Phones arrive over the first 300 rounds.
    let schedule = ActivationSchedule::staggered_uniform(n, 300, seed);
    let last_arrival = schedule.last_activation();

    let uids = UidPool::random(n, seed);
    // Every phone knows only a generous bound on crowd size.
    let config = TagConfig::new(1 << 10, 3.0, 64);
    let nodes = NonSyncBitConvergence::spawn(&uids, config, seed);

    let mut engine = Engine::new(
        mobility,
        ModelParams::mobile(config.nonsync_tag_bits()),
        schedule,
        nodes,
        seed,
    );

    println!("festival mesh: {n} phones, waypoint mobility (τ = 20), arrivals over {last_arrival} rounds");
    println!("advertising budget b = {} bits\n", config.nonsync_tag_bits());
    println!("{:>7}  {:>7}  {:>11}", "round", "active", "agreement");

    let mut stabilized_at = None;
    for checkpoint in 1..=60 {
        engine.run_rounds(100);
        let round = checkpoint * 100;
        let active = (0..n).filter(|&u| engine.is_active(u)).count();
        // Fraction of phones that already point at the eventual leader.
        let mode = agreement_fraction(engine.nodes());
        println!("{round:>7}  {active:>7}  {:>10.1}%", mode * 100.0);
        if engine.leaders_agree().is_some() {
            stabilized_at = Some(round);
            break;
        }
    }

    match stabilized_at {
        Some(r) => {
            let leader = engine.leaders_agree().unwrap();
            println!(
                "\ncoordinator elected: {leader:#018x} (checkpointed at round {r}, \
                 ≤ {} rounds after the last arrival)",
                r - last_arrival
            );
            assert_eq!(leader, expected_winner(engine.nodes()));
        }
        None => println!("\nno agreement within the simulated window — rerun with more rounds"),
    }
}

/// Fraction of nodes whose current leader equals the most common choice.
fn agreement_fraction(nodes: &[NonSyncBitConvergence]) -> f64 {
    let mut counts = std::collections::BTreeMap::new();
    for node in nodes {
        *counts.entry(node.leader()).or_insert(0usize) += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f64 / nodes.len() as f64
}

/// The UID of the globally smallest (tag, uid) pair — who must win.
fn expected_winner(nodes: &[NonSyncBitConvergence]) -> u64 {
    nodes.iter().map(|p| p.best_pair()).min().unwrap().uid
}
